// Command benchgate is the CI bench trend gate: it compares a fresh
// `go test -bench` run against the committed history in
// BENCH_endpoint.json and fails (exit 1) when a watched benchmark
// regressed beyond the threshold — by default >25% worse ns/op, >25%
// fewer datagrams per receive syscall, or (where the history commits a
// baseline for it) >25% more wakeups per op for BenchmarkEndpointFanout
// and >25% fewer handshakes per second for BenchmarkHandshakeChurn.
// The comparison is written to -out for upload as a CI artifact.
//
// Usage:
//
//	benchgate -bench bench-smoke.txt [-history BENCH_endpoint.json] [-out bench-trend.txt] [-name BenchmarkEndpointFanout] [-threshold 0.25]
//
// Exit codes: 0 no regression, 1 regression detected, 2 input error
// (missing benchmark in the run, unreadable files). A benchmark that
// was skipped (e.g. the GSO fan-out on a kernel without UDP_SEGMENT)
// or has no committed baseline passes with a note rather than failing,
// so the gate cannot rot the matrix on less capable runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	bench := flag.String("bench", "", "go test -bench output to check (required)")
	history := flag.String("history", "BENCH_endpoint.json", "committed benchmark history")
	out := flag.String("out", "bench-trend.txt", "where to write the comparison report")
	name := flag.String("name", "BenchmarkEndpointFanout", "benchmark to gate")
	threshold := flag.Float64("threshold", 0.25, "relative regression that fails the gate")
	nsThreshold := flag.Float64("ns-threshold", 0, "separate tolerance for ns/op (0 = same as -threshold); CI sets this wider because wall-clock baselines do not transfer across machines the way the structural dgrams-per-syscall ratio does")
	wakeupsThreshold := flag.Float64("wakeups-threshold", 0, "separate tolerance for wakeups/op (0 = same as -threshold); wakeup counts depend on core count and scheduler, so CI widens this like ns/op while still catching structural blowups such as a lapsed multishot degenerating to one wakeup per datagram")
	flag.Parse()
	if *nsThreshold == 0 {
		*nsThreshold = *threshold
	}
	if *wakeupsThreshold == 0 {
		*wakeupsThreshold = *threshold
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -bench is required")
		os.Exit(2)
	}

	bf, err := os.Open(*bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	runs, err := parseBenchRuns(bf, *name)
	bf.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parse %s: %v\n", *bench, err)
		os.Exit(2)
	}

	hb, err := os.ReadFile(*history)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	base, baseDesc, err := latestBaseline(hb, *name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *history, err)
		os.Exit(2)
	}

	report, regressed := compare(*name, runs, base, baseDesc, *threshold, *nsThreshold, *wakeupsThreshold)
	fmt.Print(report)
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if regressed {
		os.Exit(1)
	}
}

// parseBenchRuns extracts every result line for the named benchmark
// from go test -bench output. Each run becomes a metric map keyed by
// unit ("ns/op", "dgram/rxcall", ...); multiple -count runs yield
// multiple maps, which compare reduces by median so one noisy run on
// a shared box cannot flip the gate.
func parseBenchRuns(r io.Reader, name string) ([]map[string]float64, error) {
	var runs []map[string]float64
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			continue
		}
		// Benchmark names carry a -GOMAXPROCS suffix: exact-match the
		// base so Fanout never swallows FanoutNoBatch.
		bench := fields[0]
		if i := strings.LastIndexByte(bench, '-'); i > 0 {
			bench = bench[:i]
		}
		if bench != name {
			continue
		}
		m := make(map[string]float64)
		// fields[1] is the iteration count; after it, value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			m[fields[i+1]] = v
		}
		if _, ok := m["ns/op"]; ok {
			runs = append(runs, m)
		}
	}
	return runs, sc.Err()
}

// median of the named metric across runs; ok is false when no run
// carries it.
func median(runs []map[string]float64, unit string) (float64, bool) {
	var vs []float64
	for _, m := range runs {
		if v, ok := m[unit]; ok {
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 {
		return 0, false
	}
	sort.Float64s(vs)
	return vs[len(vs)/2], true
}

// baseline is the committed reference for one benchmark: the metric
// names mirror the JSON history fields.
type baseline struct {
	NsPerOp          float64 `json:"ns_per_op"`
	DgramPerRx       float64 `json:"dgram_per_rx_syscall"`
	WakeupsPerOp     float64 `json:"wakeups_per_op"`
	HandshakesPerSec float64 `json:"handshakes_per_sec"`
}

// latestBaseline walks the history newest-first for the most recent
// entry carrying the named benchmark. A nil baseline (with no error)
// means no entry records it yet — the gate passes with a note, so a
// brand-new benchmark can land before its first committed numbers.
func latestBaseline(historyJSON []byte, name string) (*baseline, string, error) {
	var doc struct {
		History []map[string]json.RawMessage `json:"history"`
	}
	if err := json.Unmarshal(historyJSON, &doc); err != nil {
		return nil, "", err
	}
	for i := len(doc.History) - 1; i >= 0; i-- {
		raw, ok := doc.History[i][name]
		if !ok {
			continue
		}
		var b baseline
		if err := json.Unmarshal(raw, &b); err != nil || b.NsPerOp == 0 {
			continue
		}
		desc := "(unlabeled entry)"
		var label struct {
			PR   json.Number `json:"pr"`
			Date string      `json:"date"`
		}
		if meta, ok := doc.History[i]["pr"]; ok {
			label.PR = ""
			_ = json.Unmarshal(meta, &label.PR)
		}
		if d, ok := doc.History[i]["date"]; ok {
			_ = json.Unmarshal(d, &label.Date)
		}
		if label.PR != "" || label.Date != "" {
			desc = fmt.Sprintf("pr %s: %s", label.PR, label.Date)
		}
		return &b, desc, nil
	}
	return nil, "", nil
}

// compare renders the trend report and decides the gate. Regression
// rules: median ns/op above baseline by more than nsThreshold, median
// dgram/rxcall below baseline by more than threshold, or median
// wakeups/op above a committed wakeups baseline by more than
// wakeupsThreshold. Improvements and missing data pass (with a note),
// so the gate only ever bites on a measured regression against
// committed numbers.
func compare(name string, runs []map[string]float64, base *baseline, baseDesc string, threshold, nsThreshold, wakeupsThreshold float64) (string, bool) {
	var b strings.Builder
	fmt.Fprintf(&b, "benchgate: %s, threshold %.0f%% (ns/op %.0f%%)\n", name, threshold*100, nsThreshold*100)
	if len(runs) == 0 {
		fmt.Fprintf(&b, "  no result in this run (benchmark skipped or filtered); gate passes\n")
		return b.String(), false
	}
	if base == nil {
		fmt.Fprintf(&b, "  no committed baseline in history; gate passes (commit numbers to arm it)\n")
		return b.String(), false
	}
	fmt.Fprintf(&b, "  baseline: %s\n", baseDesc)
	regressed := false
	check := func(unit string, baseVal, tol float64, lowerIsBetter bool) {
		cur, ok := median(runs, unit)
		if !ok || baseVal == 0 {
			fmt.Fprintf(&b, "  %-14s baseline %.2f, no current value; skipped\n", unit, baseVal)
			return
		}
		delta := (cur - baseVal) / baseVal
		bad := delta > tol
		if !lowerIsBetter {
			bad = delta < -tol
		}
		verdict := "ok"
		if bad {
			verdict = "REGRESSION"
			regressed = true
		}
		fmt.Fprintf(&b, "  %-14s baseline %12.2f  current %12.2f  (%+6.1f%%, tolerance %.0f%%)  %s\n",
			unit, baseVal, cur, delta*100, tol*100, verdict)
	}
	check("ns/op", base.NsPerOp, nsThreshold, true)
	check("dgram/rxcall", base.DgramPerRx, threshold, false)
	// Wakeups per op only gates entries that committed a baseline for
	// it (the io_uring data path's structural metric); zero means the
	// entry predates the metric and the check stays silent.
	if base.WakeupsPerOp > 0 {
		check("wakeups/op", base.WakeupsPerOp, wakeupsThreshold, true)
	}
	// Handshake throughput gates only entries that committed it (the
	// churn benchmark's headline); like ns/op it is wall-clock-bound, so
	// it shares the wider ns tolerance rather than the structural one.
	// For a higher-is-better metric a raw delta can never lose more than
	// 100%, which would make CI's wide band vacuous — so the tolerance
	// is converted to the equivalent ratio drop: ns/op doubling (tol
	// 1.0) corresponds to throughput halving (drop 0.5).
	if base.HandshakesPerSec > 0 {
		check("handshakes/sec", base.HandshakesPerSec, nsThreshold/(1+nsThreshold), false)
	}
	if regressed {
		fmt.Fprintf(&b, "  FAIL: regression beyond tolerance against committed history\n")
	} else {
		fmt.Fprintf(&b, "  PASS\n")
	}
	return b.String(), regressed
}
