package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEndpointFanout-4      	       1	1300000000 ns/op	  13.28 MB/s	        17.68 dgram/rxcall	         4.33 dgram/txcall	       620.0 wakeups/op	39798562 B/op	   82534 allocs/op
BenchmarkEndpointFanout-4      	       1	1200000000 ns/op	  14.00 MB/s	        18.40 dgram/rxcall	         4.50 dgram/txcall	39798562 B/op	   82534 allocs/op
BenchmarkEndpointFanoutNoBatch-4	       1	3395139268 ns/op	   4.94 MB/s	         1.00 dgram/rxcall	         1.00 dgram/txcall	39000000 B/op	   80000 allocs/op
PASS
`

const sampleHistory = `{
  "history": [
    {"pr": 2, "date": "batched IO",
     "BenchmarkEndpointFanout": {"ns_per_op": 999, "dgram_per_rx_syscall": 99}},
    {"pr": 3, "date": "sharded endpoints",
     "BenchmarkEndpointFanout": {"ns_per_op": 1263246778, "dgram_per_rx_syscall": 17.68},
     "BenchmarkShardedFanout": {"cmd": "..."}}
  ]
}`

func TestParseBenchRuns(t *testing.T) {
	runs, err := parseBenchRuns(strings.NewReader(sampleBench), "BenchmarkEndpointFanout")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("parsed %d runs, want 2 (NoBatch must not match)", len(runs))
	}
	if runs[0]["ns/op"] != 1.3e9 || runs[1]["ns/op"] != 1.2e9 {
		t.Fatalf("ns/op parsed wrong: %v %v", runs[0]["ns/op"], runs[1]["ns/op"])
	}
	if runs[0]["dgram/rxcall"] != 17.68 {
		t.Fatalf("dgram/rxcall parsed wrong: %v", runs[0]["dgram/rxcall"])
	}
	if none, _ := parseBenchRuns(strings.NewReader(sampleBench), "BenchmarkAbsent"); len(none) != 0 {
		t.Fatal("absent benchmark produced runs")
	}
}

func TestLatestBaseline(t *testing.T) {
	b, desc, err := latestBaseline([]byte(sampleHistory), "BenchmarkEndpointFanout")
	if err != nil {
		t.Fatal(err)
	}
	if b == nil || b.NsPerOp != 1263246778 || b.DgramPerRx != 17.68 {
		t.Fatalf("baseline = %+v, want the PR 3 (latest) entry", b)
	}
	if !strings.Contains(desc, "3") {
		t.Errorf("baseline description %q does not name the entry", desc)
	}
	if b, _, _ := latestBaseline([]byte(sampleHistory), "BenchmarkNever"); b != nil {
		t.Fatal("missing benchmark yielded a baseline")
	}
}

func TestCompareGate(t *testing.T) {
	runs, _ := parseBenchRuns(strings.NewReader(sampleBench), "BenchmarkEndpointFanout")
	base := &baseline{NsPerOp: 1263246778, DgramPerRx: 17.68}

	// Medians 1.3e9 ns/op (+2.9%) and 18.40 rx (+4.1%): within 25%.
	report, regressed := compare("BenchmarkEndpointFanout", runs, base, "pr 3", 0.25, 0.25, 0.25)
	if regressed {
		t.Fatalf("within-threshold run regressed:\n%s", report)
	}
	if !strings.Contains(report, "PASS") {
		t.Fatalf("report lacks PASS:\n%s", report)
	}

	// >25% slower ns/op must fail…
	_, regressed = compare("BenchmarkEndpointFanout", runs,
		&baseline{NsPerOp: 9e8, DgramPerRx: 17.68}, "pr 3", 0.25, 0.25, 0.25)
	if !regressed {
		t.Fatal("44% ns/op regression passed the gate")
	}
	// …unless the ns/op tolerance was widened for a cross-machine run,
	// in which case only a blowup beyond it bites.
	if _, r := compare("BenchmarkEndpointFanout", runs,
		&baseline{NsPerOp: 9e8, DgramPerRx: 17.68}, "pr 3", 0.25, 1.0, 0.25); r {
		t.Fatal("44% ns/op failed the gate despite a 100% ns/op tolerance")
	}
	if _, r := compare("BenchmarkEndpointFanout", runs,
		&baseline{NsPerOp: 5e8, DgramPerRx: 17.68}, "pr 3", 0.25, 1.0, 0.25); !r {
		t.Fatal("2.6x ns/op blowup passed the widened gate")
	}
	// …and so must >25% fewer datagrams per syscall.
	report, regressed = compare("BenchmarkEndpointFanout", runs,
		&baseline{NsPerOp: 1.3e9, DgramPerRx: 30}, "pr 3", 0.25, 0.25, 0.25)
	if !regressed {
		t.Fatalf("rx-batch collapse passed the gate:\n%s", report)
	}

	// Wakeups per op gates only entries that committed it: a 25%+ climb
	// against a wakeups baseline fails, and a baseline without the field
	// (zero) never arms the check however the run looks.
	report, regressed = compare("BenchmarkEndpointFanout", runs,
		&baseline{NsPerOp: 1.3e9, DgramPerRx: 17.68, WakeupsPerOp: 400}, "pr 6", 0.25, 0.25, 0.25)
	if !regressed {
		t.Fatalf("wakeup blowup (620 vs 400) passed the gate:\n%s", report)
	}
	if _, r := compare("BenchmarkEndpointFanout", runs,
		&baseline{NsPerOp: 1.3e9, DgramPerRx: 17.68, WakeupsPerOp: 600}, "pr 6", 0.25, 0.25, 0.25); r {
		t.Fatal("within-threshold wakeups failed the gate")
	}
	if _, r := compare("BenchmarkEndpointFanout", runs,
		&baseline{NsPerOp: 1.3e9, DgramPerRx: 17.68}, "pr 6", 0.25, 0.25, 0.25); r {
		t.Fatal("entry without a wakeups baseline armed the wakeups check")
	}
	if _, r := compare("BenchmarkEndpointFanout", runs,
		&baseline{NsPerOp: 1.3e9, DgramPerRx: 17.68, WakeupsPerOp: 400}, "pr 6", 0.25, 0.25, 1.0); r {
		t.Fatal("55% wakeups climb failed the gate despite a 100% wakeups tolerance")
	}

	// A faster run, or one with no baseline/result, always passes.
	if _, r := compare("BenchmarkEndpointFanout", runs,
		&baseline{NsPerOp: 9e9, DgramPerRx: 1}, "pr 3", 0.25, 0.25, 0.25); r {
		t.Fatal("improvement flagged as regression")
	}
	if _, r := compare("BenchmarkEndpointFanout", nil, base, "pr 3", 0.25, 0.25, 0.25); r {
		t.Fatal("skipped benchmark failed the gate")
	}
	if _, r := compare("BenchmarkEndpointFanout", runs, nil, "", 0.25, 0.25, 0.25); r {
		t.Fatal("missing baseline failed the gate")
	}
}
