// Command qtpsim runs a single simulated QTP flow over a configurable
// path and prints a one-second goodput series plus summary counters —
// a workbench for exploring protocol behaviour outside the fixed
// experiment suite.
//
// Usage:
//
//	qtpsim [-profile qtpaf|qtplight|qtplight-rel|classic] [-rate 125000]
//	       [-g 50000] [-loss 0.01] [-burst] [-rtt 40ms] [-dur 30s] [-seed 1]
//	       [-streams N [-mix reliable,unordered,expiring] [-deadline 200ms]]
//
// With -streams N > 1 the flow negotiates stream multiplexing and runs
// N concurrent streams over the one connection, delivery modes cycling
// through -mix, a paced feed on each; the summary becomes a per-stream
// ledger showing what each mode delivered, skipped and abandoned under
// the configured loss.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qtp"
	"repro/internal/stats"
)

func main() {
	profName := flag.String("profile", "classic", "qtpaf | qtplight | qtplight-rel | classic")
	rate := flag.Float64("rate", 125_000, "bottleneck rate, bytes/s")
	g := flag.Float64("g", 50_000, "QoS target for qtpaf, bytes/s")
	loss := flag.Float64("loss", 0.01, "random loss probability")
	burst := flag.Bool("burst", false, "use Gilbert-Elliott burst loss instead of i.i.d.")
	rtt := flag.Duration("rtt", 40*time.Millisecond, "base round-trip time")
	dur := flag.Duration("dur", 30*time.Second, "simulated duration")
	seed := flag.Int64("seed", 1, "random seed")
	streams := flag.Int("streams", 1, "streams on the connection (>1 = multi-stream mixed-mode run)")
	mix := flag.String("mix", "reliable,expiring", "delivery modes cycled across streams: reliable | unordered | expiring")
	deadline := flag.Duration("deadline", 200*time.Millisecond, "retransmission deadline for expiring streams")
	flag.Parse()

	var prof core.Profile
	switch *profName {
	case "qtpaf":
		prof = core.QTPAF(*g)
	case "qtplight":
		prof = core.QTPLight()
	case "qtplight-rel":
		prof = core.QTPLightReliable(0)
	case "classic":
		prof = core.ClassicTFRC()
	default:
		log.Fatalf("unknown profile %q", *profName)
	}

	var lm netsim.LossModel
	if *loss > 0 {
		if *burst {
			lm = netsim.NewGilbertElliott(*loss/10, 0.4, *loss/2, 0.15)
		} else {
			lm = netsim.Bernoulli{P: *loss}
		}
	}

	sim := netsim.New(*seed)
	toRecv, toSend := &netsim.Indirect{}, &netsim.Indirect{}
	fwd := netsim.NewLink(sim, netsim.LinkConfig{
		Name: "fwd", Rate: *rate, Delay: *rtt / 2,
		Queue: netsim.NewDropTail(100), Loss: lm, Dst: toRecv,
	})
	rev := netsim.NewLink(sim, netsim.LinkConfig{
		Name: "rev", Rate: 125e6, Delay: *rtt / 2,
		Queue: &netsim.DropTail{}, Dst: toSend,
	})
	multiRun := *streams > 1
	var modes []packet.StreamMode
	if multiRun {
		var err error
		if modes, err = packet.ParseModes(*mix); err != nil {
			log.Fatal(err)
		}
		if prof.Reliability == packet.ReliabilityNone {
			// Streams need per-stream scoreboards; lift the profile to
			// full reliability (stream modes then pick the service).
			prof.Reliability = packet.ReliabilityFull
			prof.Deadline = 0
		}
		prof.MaxStreams = *streams
	}

	f := qtp.StartFlow(sim, qtp.FlowConfig{
		ID: 1, Profile: prof, RTTHint: *rtt, Fwd: fwd, Rev: rev, Bulk: !multiRun,
	})
	toRecv.Target = f.ReceiverEntry()
	toSend.Target = f.SenderEntry()

	var streamIDs []uint64
	if multiRun {
		// One paced feed per stream: a chunk every 20 ms, the link rate
		// split evenly, so expiring streams see deadline pressure the
		// moment loss or queueing delays recovery.
		chunk := int(*rate / float64(*streams) / 50)
		if chunk < 200 {
			chunk = 200
		}
		sim.At(0, func() {
			streamIDs = append(streamIDs, 0)
			for i := 1; i < *streams; i++ {
				mode := modes[(i-1)%len(modes)]
				var dl time.Duration
				if mode == packet.StreamExpiring {
					dl = *deadline
				}
				id, err := f.Sender.OpenStream(mode, dl)
				if err != nil {
					log.Fatalf("open stream: %v", err)
				}
				streamIDs = append(streamIDs, id)
			}
		})
		steps := int(*dur / (20 * time.Millisecond))
		for step := 0; step < steps; step++ {
			step := step
			sim.At(time.Duration(step)*20*time.Millisecond+time.Millisecond, func() {
				for _, id := range streamIDs {
					f.Sender.WriteStream(id, make([]byte, chunk))
				}
				if step == steps-1 {
					for _, id := range streamIDs {
						f.Sender.CloseStream(id)
					}
				}
				f.Pump()
			})
		}
	}

	rs := stats.NewRateSeries(time.Second)
	rs.Add(0, 0)
	f.DeliveredAt = func(now time.Duration, n int) { rs.Add(now, n) }
	sim.Run(*dur)

	fmt.Printf("# profile=%v rate=%.0f loss=%.3f burst=%v rtt=%v seed=%d\n",
		prof, *rate, *loss, *burst, *rtt, *seed)
	fmt.Println("t(s)  goodput(kB/s)")
	for i, r := range rs.Rates() {
		fmt.Printf("%4d  %8.1f\n", i+1, r/1000)
	}
	st := f.Sender.Stats()
	fmt.Printf("\nsummary: sent=%d retx=%d delivered=%d rate=%.0fB/s rtt=%v p=%.5f\n",
		st.DataBytesSent, st.RetransFrames, f.DeliveredBytes,
		f.Sender.Rate(), f.Sender.RTT(), f.Sender.LossRate())
	if multiRun {
		fmt.Printf("\nper-stream ledger:\n")
		for _, id := range streamIDs {
			snd, _ := f.Sender.StreamStats(id)
			rcv, _ := f.Receiver.StreamStats(id)
			fmt.Printf("  stream %d %-18v sent=%dB retx=%d abandoned=%d delivered=%dB skipped=%d\n",
				id, snd.Mode, snd.DataBytesSent, snd.RetransFrames, snd.AbandonedSegs,
				rcv.DeliveredBytes, rcv.SkippedSegs)
		}
	}
}
