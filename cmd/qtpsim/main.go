// Command qtpsim runs a single simulated QTP flow over a configurable
// path and prints a one-second goodput series plus summary counters —
// a workbench for exploring protocol behaviour outside the fixed
// experiment suite.
//
// Usage:
//
//	qtpsim [-profile qtpaf|qtplight|qtplight-rel|classic] [-rate 125000]
//	       [-g 50000] [-loss 0.01] [-burst] [-rtt 40ms] [-dur 30s] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/qtp"
	"repro/internal/stats"
)

func main() {
	profName := flag.String("profile", "classic", "qtpaf | qtplight | qtplight-rel | classic")
	rate := flag.Float64("rate", 125_000, "bottleneck rate, bytes/s")
	g := flag.Float64("g", 50_000, "QoS target for qtpaf, bytes/s")
	loss := flag.Float64("loss", 0.01, "random loss probability")
	burst := flag.Bool("burst", false, "use Gilbert-Elliott burst loss instead of i.i.d.")
	rtt := flag.Duration("rtt", 40*time.Millisecond, "base round-trip time")
	dur := flag.Duration("dur", 30*time.Second, "simulated duration")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var prof core.Profile
	switch *profName {
	case "qtpaf":
		prof = core.QTPAF(*g)
	case "qtplight":
		prof = core.QTPLight()
	case "qtplight-rel":
		prof = core.QTPLightReliable(0)
	case "classic":
		prof = core.ClassicTFRC()
	default:
		log.Fatalf("unknown profile %q", *profName)
	}

	var lm netsim.LossModel
	if *loss > 0 {
		if *burst {
			lm = netsim.NewGilbertElliott(*loss/10, 0.4, *loss/2, 0.15)
		} else {
			lm = netsim.Bernoulli{P: *loss}
		}
	}

	sim := netsim.New(*seed)
	toRecv, toSend := &netsim.Indirect{}, &netsim.Indirect{}
	fwd := netsim.NewLink(sim, netsim.LinkConfig{
		Name: "fwd", Rate: *rate, Delay: *rtt / 2,
		Queue: netsim.NewDropTail(100), Loss: lm, Dst: toRecv,
	})
	rev := netsim.NewLink(sim, netsim.LinkConfig{
		Name: "rev", Rate: 125e6, Delay: *rtt / 2,
		Queue: &netsim.DropTail{}, Dst: toSend,
	})
	f := qtp.StartFlow(sim, qtp.FlowConfig{
		ID: 1, Profile: prof, RTTHint: *rtt, Fwd: fwd, Rev: rev, Bulk: true,
	})
	toRecv.Target = f.ReceiverEntry()
	toSend.Target = f.SenderEntry()

	rs := stats.NewRateSeries(time.Second)
	rs.Add(0, 0)
	f.DeliveredAt = func(now time.Duration, n int) { rs.Add(now, n) }
	sim.Run(*dur)

	fmt.Printf("# profile=%v rate=%.0f loss=%.3f burst=%v rtt=%v seed=%d\n",
		prof, *rate, *loss, *burst, *rtt, *seed)
	fmt.Println("t(s)  goodput(kB/s)")
	for i, r := range rs.Rates() {
		fmt.Printf("%4d  %8.1f\n", i+1, r/1000)
	}
	st := f.Sender.Stats()
	fmt.Printf("\nsummary: sent=%d retx=%d delivered=%d rate=%.0fB/s rtt=%v p=%.5f\n",
		st.DataBytesSent, st.RetransFrames, f.DeliveredBytes,
		f.Sender.Rate(), f.Sender.RTT(), f.Sender.LossRate())
}
