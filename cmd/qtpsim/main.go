// Command qtpsim runs a single simulated QTP flow over a configurable
// path and prints a one-second goodput series plus summary counters —
// a workbench for exploring protocol behaviour outside the fixed
// experiment suite.
//
// Usage:
//
//	qtpsim [-profile qtpaf|qtplight|qtplight-rel|classic] [-rate 125000]
//	       [-g 50000] [-loss 0.01] [-burst] [-rtt 40ms] [-dur 30s] [-seed 1]
//	       [-cc tfrc|bbr] [-queue 100]
//	       [-streams N [-mix reliable,unordered,expiring] [-deadline 200ms]]
//	qtpsim -cc-matrix [-rate ...] [-rtt ...] [-loss ...] [-dur ...]
//	       [-assert-ratio 2.0]
//
// With -streams N > 1 the flow negotiates stream multiplexing and runs
// N concurrent streams over the one connection, delivery modes cycling
// through -mix, a paced feed on each; the summary becomes a per-stream
// ledger showing what each mode delivered, skipped and abandoned under
// the configured loss.
//
// -cc-matrix runs the congestion-control head-to-head instead: TFRC,
// gTFRC (target -g) and BBR, one bulk flow each over the same path and
// seed, and prints delivered bytes plus each controller's ratio to
// TFRC. With -assert-ratio r > 0 the command exits non-zero unless
// BBR delivers at least r times TFRC's bytes — the CI smoke hook for
// the large-BDP acceptance bar.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/qtp"
	"repro/internal/stats"
)

func main() {
	profName := flag.String("profile", "classic", "qtpaf | qtplight | qtplight-rel | classic")
	rate := flag.Float64("rate", 125_000, "bottleneck rate, bytes/s")
	g := flag.Float64("g", 50_000, "QoS target for qtpaf, bytes/s")
	loss := flag.Float64("loss", 0.01, "random loss probability")
	burst := flag.Bool("burst", false, "use Gilbert-Elliott burst loss instead of i.i.d.")
	rtt := flag.Duration("rtt", 40*time.Millisecond, "base round-trip time")
	dur := flag.Duration("dur", 30*time.Second, "simulated duration")
	seed := flag.Int64("seed", 1, "random seed")
	streams := flag.Int("streams", 1, "streams on the connection (>1 = multi-stream mixed-mode run)")
	mix := flag.String("mix", "reliable,expiring", "delivery modes cycled across streams: reliable | unordered | expiring")
	deadline := flag.Duration("deadline", 200*time.Millisecond, "retransmission deadline for expiring streams")
	cc := flag.String("cc", "", "congestion control: tfrc (default) | bbr")
	queue := flag.Int("queue", 100, "bottleneck queue depth, packets")
	ccMatrix := flag.Bool("cc-matrix", false, "run the TFRC / gTFRC / BBR head-to-head and exit")
	assertRatio := flag.Float64("assert-ratio", 0, "with -cc-matrix: fail unless BBR ≥ ratio × TFRC bytes")
	flag.Parse()

	if *ccMatrix {
		runCCMatrix(*rate, *rtt, *loss, *burst, *dur, *seed, *g, *queue, *assertRatio)
		return
	}

	var prof core.Profile
	switch *profName {
	case "qtpaf":
		prof = core.QTPAF(*g)
	case "qtplight":
		prof = core.QTPLight()
	case "qtplight-rel":
		prof = core.QTPLightReliable(0)
	case "classic":
		prof = core.ClassicTFRC()
	default:
		log.Fatalf("unknown profile %q", *profName)
	}
	if *cc != "" {
		mode, err := packet.ParseCongestion(*cc)
		if err != nil {
			log.Fatal(err)
		}
		prof.Congestion = mode
		if err := prof.Validate(); err != nil {
			log.Fatal(err)
		}
	}

	var lm netsim.LossModel
	if *loss > 0 {
		if *burst {
			lm = netsim.NewGilbertElliott(*loss/10, 0.4, *loss/2, 0.15)
		} else {
			lm = netsim.Bernoulli{P: *loss}
		}
	}

	sim := netsim.New(*seed)
	toRecv, toSend := &netsim.Indirect{}, &netsim.Indirect{}
	fwd := netsim.NewLink(sim, netsim.LinkConfig{
		Name: "fwd", Rate: *rate, Delay: *rtt / 2,
		Queue: netsim.NewDropTail(*queue), Loss: lm, Dst: toRecv,
	})
	rev := netsim.NewLink(sim, netsim.LinkConfig{
		Name: "rev", Rate: 125e6, Delay: *rtt / 2,
		Queue: &netsim.DropTail{}, Dst: toSend,
	})
	multiRun := *streams > 1
	var modes []packet.StreamMode
	if multiRun {
		var err error
		if modes, err = packet.ParseModes(*mix); err != nil {
			log.Fatal(err)
		}
		if prof.Reliability == packet.ReliabilityNone {
			// Streams need per-stream scoreboards; lift the profile to
			// full reliability (stream modes then pick the service).
			prof.Reliability = packet.ReliabilityFull
			prof.Deadline = 0
		}
		prof.MaxStreams = *streams
	}

	f := qtp.StartFlow(sim, qtp.FlowConfig{
		ID: 1, Profile: prof, RTTHint: *rtt, Fwd: fwd, Rev: rev, Bulk: !multiRun,
	})
	toRecv.Target = f.ReceiverEntry()
	toSend.Target = f.SenderEntry()

	var streamIDs []uint64
	if multiRun {
		// One paced feed per stream: a chunk every 20 ms, the link rate
		// split evenly, so expiring streams see deadline pressure the
		// moment loss or queueing delays recovery.
		chunk := int(*rate / float64(*streams) / 50)
		if chunk < 200 {
			chunk = 200
		}
		sim.At(0, func() {
			streamIDs = append(streamIDs, 0)
			for i := 1; i < *streams; i++ {
				mode := modes[(i-1)%len(modes)]
				var dl time.Duration
				if mode == packet.StreamExpiring {
					dl = *deadline
				}
				id, err := f.Sender.OpenStream(mode, dl)
				if err != nil {
					log.Fatalf("open stream: %v", err)
				}
				streamIDs = append(streamIDs, id)
			}
		})
		steps := int(*dur / (20 * time.Millisecond))
		for step := 0; step < steps; step++ {
			step := step
			sim.At(time.Duration(step)*20*time.Millisecond+time.Millisecond, func() {
				for _, id := range streamIDs {
					f.Sender.WriteStream(id, make([]byte, chunk))
				}
				if step == steps-1 {
					for _, id := range streamIDs {
						f.Sender.CloseStream(id)
					}
				}
				f.Pump()
			})
		}
	}

	rs := stats.NewRateSeries(time.Second)
	rs.Add(0, 0)
	f.DeliveredAt = func(now time.Duration, n int) { rs.Add(now, n) }
	sim.Run(*dur)

	fmt.Printf("# profile=%v rate=%.0f loss=%.3f burst=%v rtt=%v seed=%d\n",
		prof, *rate, *loss, *burst, *rtt, *seed)
	fmt.Println("t(s)  goodput(kB/s)")
	for i, r := range rs.Rates() {
		fmt.Printf("%4d  %8.1f\n", i+1, r/1000)
	}
	st := f.Sender.Stats()
	fmt.Printf("\nsummary: sent=%d retx=%d delivered=%d rate=%.0fB/s rtt=%v p=%.5f\n",
		st.DataBytesSent, st.RetransFrames, f.DeliveredBytes,
		f.Sender.Rate(), f.Sender.RTT(), f.Sender.LossRate())
	if multiRun {
		fmt.Printf("\nper-stream ledger:\n")
		for _, id := range streamIDs {
			snd, _ := f.Sender.StreamStats(id)
			rcv, _ := f.Receiver.StreamStats(id)
			fmt.Printf("  stream %d %-18v sent=%dB retx=%d abandoned=%d delivered=%dB skipped=%d\n",
				id, snd.Mode, snd.DataBytesSent, snd.RetransFrames, snd.AbandonedSegs,
				rcv.DeliveredBytes, rcv.SkippedSegs)
		}
	}
}

// runCCMatrix runs one bulk flow per congestion controller — TFRC,
// gTFRC with target g, and BBR — over the same path and seed, and
// prints the head-to-head. assertRatio > 0 turns the BBR row into a
// gate: the process exits non-zero unless BBR delivered at least
// assertRatio × TFRC's bytes.
func runCCMatrix(rate float64, rtt time.Duration, loss float64, burst bool,
	dur time.Duration, seed int64, g float64, queue int, assertRatio float64) {
	runOnce := func(prof core.Profile) (int, *qtp.Flow) {
		var lm netsim.LossModel
		if loss > 0 {
			if burst {
				lm = netsim.NewGilbertElliott(loss/10, 0.4, loss/2, 0.15)
			} else {
				lm = netsim.Bernoulli{P: loss}
			}
		}
		sim := netsim.New(seed)
		toRecv, toSend := &netsim.Indirect{}, &netsim.Indirect{}
		fwd := netsim.NewLink(sim, netsim.LinkConfig{
			Name: "fwd", Rate: rate, Delay: rtt / 2,
			Queue: netsim.NewDropTail(queue), Loss: lm, Dst: toRecv,
		})
		rev := netsim.NewLink(sim, netsim.LinkConfig{
			Name: "rev", Rate: 125e6, Delay: rtt / 2,
			Queue: &netsim.DropTail{}, Dst: toSend,
		})
		f := qtp.StartFlow(sim, qtp.FlowConfig{
			ID: 1, Profile: prof, RTTHint: rtt, Fwd: fwd, Rev: rev, Bulk: true,
		})
		toRecv.Target = f.ReceiverEntry()
		toSend.Target = f.SenderEntry()
		sim.Run(dur)
		return f.DeliveredBytes, f
	}

	bbrProf := core.QTPLightReliable(0)
	bbrProf.Congestion = packet.CongestionBBR
	rows := []struct {
		name string
		prof core.Profile
	}{
		{"tfrc", core.QTPLightReliable(0)},
		{"gtfrc", core.QTPAF(g)},
		{"bbr", bbrProf},
	}

	fmt.Printf("# cc-matrix rate=%.0f rtt=%v loss=%.3f queue=%d dur=%v seed=%d g=%.0f\n",
		rate, rtt, loss, queue, dur, seed, g)
	fmt.Println("cc     delivered(B)   goodput(kB/s)   retx      vs-tfrc")
	var tfrcBytes, bbrBytes int
	for _, row := range rows {
		delivered, f := runOnce(row.prof)
		if row.name == "tfrc" {
			tfrcBytes = delivered
		}
		if row.name == "bbr" {
			bbrBytes = delivered
		}
		ratio := 0.0
		if tfrcBytes > 0 {
			ratio = float64(delivered) / float64(tfrcBytes)
		}
		fmt.Printf("%-6s %12d %15.1f %6d %10.2fx\n",
			row.name, delivered, float64(delivered)/dur.Seconds()/1000,
			f.Sender.Stats().RetransFrames, ratio)
	}
	if assertRatio > 0 {
		if tfrcBytes == 0 {
			log.Fatal("cc-matrix: TFRC delivered nothing — topology broken")
		}
		if got := float64(bbrBytes) / float64(tfrcBytes); got < assertRatio {
			log.Fatalf("cc-matrix: BBR/TFRC = %.2fx, want >= %.2fx", got, assertRatio)
		}
	}
}
